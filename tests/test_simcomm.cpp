#include "par/simcomm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

namespace lra {
namespace {

class WorldSizes : public ::testing::TestWithParam<int> {};

TEST_P(WorldSizes, AllreduceSumIsGlobal) {
  SimWorld w(GetParam());
  std::atomic<int> failures{0};
  w.run([&](RankCtx& ctx) {
    const double s = ctx.allreduce_sum(static_cast<double>(ctx.rank() + 1));
    const double expect = ctx.size() * (ctx.size() + 1) / 2.0;
    if (s != expect) ++failures;
  });
  EXPECT_EQ(failures, 0);
}

TEST_P(WorldSizes, AllreduceMax) {
  SimWorld w(GetParam());
  std::atomic<int> failures{0};
  w.run([&](RankCtx& ctx) {
    const double m = ctx.allreduce_max(static_cast<double>(ctx.rank()));
    if (m != ctx.size() - 1) ++failures;
  });
  EXPECT_EQ(failures, 0);
}

TEST_P(WorldSizes, AllgatherOrdersByRank) {
  SimWorld w(GetParam());
  std::atomic<int> failures{0};
  w.run([&](RankCtx& ctx) {
    const auto all = ctx.allgather(static_cast<long long>(ctx.rank() * 10));
    for (int r = 0; r < ctx.size(); ++r)
      if (all[r] != 10LL * r) ++failures;
  });
  EXPECT_EQ(failures, 0);
}

TEST_P(WorldSizes, AllgathervConcatenatesVariableSizes) {
  SimWorld w(GetParam());
  std::atomic<int> failures{0};
  w.run([&](RankCtx& ctx) {
    std::vector<double> mine(static_cast<std::size_t>(ctx.rank() + 1),
                             static_cast<double>(ctx.rank()));
    const auto all = ctx.allgatherv(mine);
    std::size_t expect_len = 0;
    for (int r = 0; r < ctx.size(); ++r) expect_len += r + 1;
    if (all.size() != expect_len) ++failures;
    // Block r should contain value r repeated r+1 times.
    std::size_t pos = 0;
    for (int r = 0; r < ctx.size(); ++r)
      for (int t = 0; t <= r; ++t)
        if (all[pos++] != r) ++failures;
  });
  EXPECT_EQ(failures, 0);
}

TEST_P(WorldSizes, BcastDeliversRootPayload) {
  SimWorld w(GetParam());
  std::atomic<int> failures{0};
  const int root = GetParam() - 1;
  w.run([&](RankCtx& ctx) {
    std::vector<std::byte> buf;
    if (ctx.rank() == root) {
      buf.resize(3);
      buf[0] = std::byte{7};
      buf[2] = std::byte{9};
    }
    ctx.bcast_bytes(buf, root);
    if (buf.size() != 3 || buf[0] != std::byte{7} || buf[2] != std::byte{9})
      ++failures;
  });
  EXPECT_EQ(failures, 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorldSizes, ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(SimComm, PointToPointDelivers) {
  SimWorld w(2);
  std::atomic<int> failures{0};
  w.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.send<double>(1, {1.5, 2.5}, 3);
    } else {
      const auto v = ctx.recv<double>(0, 3);
      if (v.size() != 2 || v[0] != 1.5 || v[1] != 2.5) ++failures;
    }
  });
  EXPECT_EQ(failures, 0);
}

TEST(SimComm, TagsAreRespected) {
  SimWorld w(2);
  std::atomic<int> failures{0};
  w.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.send<int>(1, {111}, 1);
      ctx.send<int>(1, {222}, 2);
    } else {
      // Receive out of order by tag.
      if (ctx.recv<int>(0, 2)[0] != 222) ++failures;
      if (ctx.recv<int>(0, 1)[0] != 111) ++failures;
    }
  });
  EXPECT_EQ(failures, 0);
}

TEST(SimComm, VirtualTimeAdvancesWithComm) {
  SimWorld w(4);
  w.run([&](RankCtx& ctx) {
    const double t0 = ctx.vtime();
    ctx.barrier();
    EXPECT_GT(ctx.vtime(), t0);
  });
  EXPECT_GT(w.elapsed_virtual(), 0.0);
}

TEST(SimComm, CollectiveSynchronizesClocks) {
  SimWorld w(3);
  std::atomic<int> failures{0};
  w.run([&](RankCtx& ctx) {
    ctx.charge(ctx.rank() * 0.5);  // skew the clocks
    ctx.barrier();
    // All clocks must now be at least the max skew (1.0).
    if (ctx.vtime() < 1.0) ++failures;
  });
  EXPECT_EQ(failures, 0);
}

TEST(SimComm, ReceiverWaitsForSenderVirtualTime) {
  SimWorld w(2);
  w.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.charge(2.0);  // sender is "slow"
      ctx.send<int>(1, {1});
    } else {
      (void)ctx.recv<int>(0);
      EXPECT_GE(ctx.vtime(), 2.0);
    }
  });
}

TEST(SimComm, ComputeChargesKernelTimers) {
  SimWorld w(2);
  w.run([&](RankCtx& ctx) {
    ctx.compute("work", [&] {
      volatile double s = 0.0;
      for (int i = 0; i < 2000000; ++i) s += std::sqrt(static_cast<double>(i));
    });
  });
  const auto& kt = w.kernel_times_max();
  ASSERT_TRUE(kt.count("work"));
  EXPECT_GT(kt.at("work"), 0.0);
  EXPECT_GE(w.elapsed_virtual(), kt.at("work"));
}

TEST(SimComm, ExceptionsPropagateToCaller) {
  SimWorld w(1);  // single rank: no peers stuck in collectives
  EXPECT_THROW(
      w.run([&](RankCtx&) { throw std::runtime_error("boom"); }),
      std::runtime_error);
}

TEST(CostModelTest, MonotoneInSizeAndRanks) {
  CostModel cm;
  EXPECT_GT(cm.p2p(1000), cm.p2p(10));
  EXPECT_GT(cm.tree(8, 100), cm.tree(2, 100));
  EXPECT_EQ(cm.tree(1, 100), 0.0);
  EXPECT_EQ(CostModel::ceil_log2(1), 0);
  EXPECT_EQ(CostModel::ceil_log2(2), 1);
  EXPECT_EQ(CostModel::ceil_log2(5), 3);
  EXPECT_EQ(CostModel::ceil_log2(1024), 10);
}

}  // namespace
}  // namespace lra
