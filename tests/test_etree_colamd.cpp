#include <gtest/gtest.h>

#include "gen/families.hpp"
#include "sparse/colamd.hpp"
#include "sparse/etree.hpp"
#include "sparse/spgemm.hpp"
#include "test_util.hpp"

namespace lra {
namespace {

TEST(Etree, DiagonalMatrixIsForestOfRoots) {
  const CscMatrix a = CscMatrix::from_dense(Matrix::identity(4));
  const auto parent = column_etree(a);
  for (Index v : parent) EXPECT_EQ(v, -1);
}

TEST(Etree, DenseMatrixIsChain) {
  const CscMatrix a =
      CscMatrix::from_dense(testing::random_matrix(5, 5, 131));
  const auto parent = column_etree(a);
  for (Index j = 0; j < 4; ++j) EXPECT_EQ(parent[j], j + 1);
  EXPECT_EQ(parent[4], -1);
}

TEST(Etree, ParentsAreLarger) {
  const CscMatrix a = circuit_like(40, 3, 1, 7);
  const auto parent = column_etree(a);
  for (std::size_t j = 0; j < parent.size(); ++j)
    if (parent[j] != -1) EXPECT_GT(parent[j], static_cast<Index>(j));
}

TEST(Postorder, IsValidPermutationWithChildrenFirst) {
  const CscMatrix a = circuit_like(30, 3, 1, 9);
  const auto parent = column_etree(a);
  const Perm post = etree_postorder(parent);
  EXPECT_TRUE(is_permutation(post));
  // Position of each node must be after all of its descendants: check the
  // direct-child relation.
  Perm pos = invert(post);
  for (std::size_t v = 0; v < parent.size(); ++v)
    if (parent[v] != -1) EXPECT_LT(pos[v], pos[parent[v]]);
}

TEST(Colamd, ProducesValidPermutation) {
  const CscMatrix a = circuit_like(60, 4, 2, 11);
  EXPECT_TRUE(is_permutation(colamd_order(a)));
  EXPECT_TRUE(is_permutation(colamd_postordered(a)));
}

TEST(Colamd, HandlesEmptyColumns) {
  CscMatrix a(5, 4);  // all-zero
  EXPECT_TRUE(is_permutation(colamd_order(a)));
}

TEST(Colamd, ReducesCholeskyFillOnArrowMatrix) {
  // Arrow matrix with the dense row/col FIRST: natural order fills A^T A
  // completely; AMD-style ordering must push the dense column last.
  const Index n = 30;
  Matrix d(n, n);
  for (Index i = 0; i < n; ++i) {
    d(i, i) = 2.0;
    d(i, 0) = 1.0;
    d(0, i) = 1.0;
  }
  const CscMatrix a = CscMatrix::from_dense(d);
  const Perm ord = colamd_order(a);
  // The hub column 0 must not be eliminated early.
  Index pos0 = -1;
  for (std::size_t j = 0; j < ord.size(); ++j)
    if (ord[j] == 0) pos0 = static_cast<Index>(j);
  EXPECT_GT(pos0, n / 2);
}

TEST(Colamd, OrderingIsDeterministic) {
  const CscMatrix a = circuit_like(50, 4, 1, 13);
  EXPECT_EQ(colamd_order(a), colamd_order(a));
}

}  // namespace
}  // namespace lra
