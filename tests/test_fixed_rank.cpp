#include "core/fixed_rank.hpp"

#include <gtest/gtest.h>

#include "dense/blas.hpp"
#include "dense/svd.hpp"
#include "gen/givens_spray.hpp"
#include "gen/spectrum.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace lra {
namespace {

CscMatrix test_matrix(Index n = 180, std::uint64_t seed = 3) {
  return givens_spray(geometric_spectrum(n, 5.0, 0.9),
                      {.left_passes = 2, .right_passes = 2, .bandwidth = 0,
                       .seed = seed});
}

TEST(Rrf, ReturnsOrthonormalBasisOfRequestedRank) {
  const CscMatrix a = test_matrix();
  const Matrix q = rrf(a, 20, 1);
  EXPECT_EQ(q.cols(), 20);
  EXPECT_LT(testing::orthogonality_defect(q), 1e-11);
}

TEST(Rrf, CapturesDominantSubspace) {
  // Residual after projection must match the Eckart-Young tail up to the
  // usual oversampling slack.
  const auto sigma = geometric_spectrum(180, 5.0, 0.9);
  const CscMatrix a = givens_spray(
      sigma, {.left_passes = 2, .right_passes = 2, .bandwidth = 0, .seed = 3});
  const Index k = 30;
  const Matrix q = rrf(a, k, 2);
  const Matrix b = spmm_t(a, q).transposed();
  double tail_sq = 0.0;
  for (std::size_t i = k; i < sigma.size(); ++i) tail_sq += sigma[i] * sigma[i];
  const double err = residual_fro(a, q, b);
  EXPECT_LT(err, 3.0 * std::sqrt(tail_sq) + 1e-12);
}

TEST(Rrf, PowerIterationImprovesAccuracy) {
  const CscMatrix a = givens_spray(
      algebraic_spectrum(200, 5.0, 0.8),
      {.left_passes = 2, .right_passes = 2, .bandwidth = 0, .seed = 5});
  auto err_of = [&](int p) {
    const Matrix q = rrf(a, 25, p);
    const Matrix b = spmm_t(a, q).transposed();
    return residual_fro(a, q, b);
  };
  EXPECT_LE(err_of(2), err_of(0) * 1.01);
}

TEST(Arrf, ConvergesAndCertifies) {
  const CscMatrix a = test_matrix();
  ArrfOptions o;
  o.tau = 1e-1;
  const ArrfResult r = arrf(a, o);
  EXPECT_EQ(r.status, Status::kConverged);
  EXPECT_LT(testing::orthogonality_defect(r.q), 1e-9);
  // True projection error must be below the certified estimate.
  const Matrix b = spmm_t(a, r.q).transposed();
  EXPECT_LE(residual_fro(a, r.q, b), r.estimate * 1.01);
}

TEST(Arrf, RankGrowsWithTighterTolerance) {
  const CscMatrix a = test_matrix();
  ArrfOptions o1;
  o1.tau = 2e-1;
  ArrfOptions o2;
  o2.tau = 2e-2;
  EXPECT_LT(arrf(a, o1).rank, arrf(a, o2).rank);
}

TEST(RsvdRestart, ConvergesWithDoublingRank) {
  const CscMatrix a = test_matrix();
  const RsvdRestartResult r = rsvd_restart(a, 1e-2, 8, 1);
  EXPECT_EQ(r.status, Status::kConverged);
  EXPECT_GT(r.restarts, 1);  // k0 = 8 is too small on purpose
  EXPECT_LT(r.error, 1e-2 * a.frobenius_norm());
}

TEST(RandQbB, ConvergesButDensifies) {
  const CscMatrix a = test_matrix();
  const RandQbBlockedResult r = randqb_b(a, 16, 1e-2);
  EXPECT_EQ(r.status, Status::kConverged);
  EXPECT_EQ(r.peak_dense_nnz, a.rows() * a.cols());  // the whole point
  EXPECT_GT(r.peak_dense_nnz, 3 * a.nnz());
  const double err = residual_fro(a, r.q, r.b);
  EXPECT_LT(err, 1e-2 * a.frobenius_norm() * 1.01);
}

TEST(FixedRankWrappers, HitExactRankBudget) {
  const CscMatrix a = test_matrix();
  const RandQbResult qb = randqb_fixed_rank(a, 48);
  EXPECT_EQ(qb.rank, 48);
  EXPECT_EQ(qb.status, Status::kConverged);
  const LuCrtpResult lu = lu_crtp_fixed_rank(a, 48);
  EXPECT_EQ(lu.rank, 48);
  EXPECT_EQ(lu.status, Status::kConverged);
}

TEST(QbToSvd, MatchesDirectSvd) {
  const CscMatrix a = test_matrix(100);
  RandQbOptions o;
  o.power = 2;
  o.block_size = 20;
  const RandQbResult qb = randqb_fixed_rank(a, 40, o);
  const SvdResult svd = qb_to_svd(qb.q, qb.b);
  EXPECT_LT(testing::orthogonality_defect(svd.u), 1e-9);
  EXPECT_LT(testing::orthogonality_defect(svd.v), 1e-9);
  const auto exact = singular_values(a.to_dense());
  for (Index j = 0; j < 10; ++j)
    EXPECT_NEAR(svd.sigma[j], exact[j], 1e-6 * exact[0]);
}

TEST(QbToSvd, TruncationParameter) {
  const CscMatrix a = test_matrix(90);
  const RandQbResult qb = randqb_fixed_rank(a, 30);
  const SvdResult svd = qb_to_svd(qb.q, qb.b, 12);
  EXPECT_EQ(svd.u.cols(), 12);
  EXPECT_EQ(svd.sigma.size(), 12u);
}

}  // namespace
}  // namespace lra
