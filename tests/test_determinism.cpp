// Bitwise determinism of the solvers across pool thread counts: RandQB_EI and
// LU_CRTP must produce *identical* factors (not just close) with 1, 2, and 8
// pool workers, and the distributed engines must produce identical telemetry
// structure (per-iteration indicator/rank series) because simulated ranks
// never fork onto the pool.

#include <gtest/gtest.h>

#include <vector>

#include "core/lu_crtp.hpp"
#include "core/randqb_ei.hpp"
#include "core/randqb_ei_dist.hpp"
#include "gen/givens_spray.hpp"
#include "gen/spectrum.hpp"
#include "par/pool.hpp"
#include "support/kernel_variant.hpp"

namespace lra {
namespace {

// The bitwise suites pin the simd-strict kernels: the vectorized variant
// whose contract is bitwise identity with the naive reference. Running them
// here (instead of under the default `simd` variant, which is only
// ULP-comparable) keeps every bit-equality assertion below meaningful.
const bool kVariantPinned = [] {
  set_kernel_variant(KernelVariant::kSimdStrict);
  return true;
}();

class PoolGuard {
 public:
  PoolGuard() : saved_(ThreadPool::global().num_threads()) {}
  ~PoolGuard() { ThreadPool::global().set_num_threads(saved_); }

 private:
  int saved_;
};

// Large enough that the SpMM/GEMM/Schur regions actually fork (they run
// inline below their work thresholds, which would make the test vacuous).
CscMatrix test_matrix(Index n = 600, std::uint64_t seed = 7) {
  return givens_spray(geometric_spectrum(n, 5.0, 0.93),
                      {.left_passes = 3, .right_passes = 3, .bandwidth = 0,
                       .seed = seed});
}

void expect_same_csc(const CscMatrix& a, const CscMatrix& b,
                     const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(a.colptr(), b.colptr()) << what;
  EXPECT_EQ(a.rowind(), b.rowind()) << what;
  EXPECT_EQ(a.values(), b.values()) << what;  // bitwise: operator== on double
}

const int kThreadCounts[] = {1, 2, 8};

TEST(DeterminismTest, RandQbEiFactorsIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const CscMatrix a = test_matrix();
  RandQbOptions opts;
  opts.block_size = 16;
  opts.tau = 1e-4;
  opts.max_rank = 128;

  std::vector<RandQbResult> runs;
  for (int nt : kThreadCounts) {
    ThreadPool::global().set_num_threads(nt);
    runs.push_back(randqb_ei(a, opts));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].rank, runs[0].rank);
    EXPECT_EQ(runs[i].iterations, runs[0].iterations);
    EXPECT_EQ(runs[i].indicator, runs[0].indicator);  // bitwise
    EXPECT_EQ(runs[i].q, runs[0].q) << "Q differs at nt=" << kThreadCounts[i];
    EXPECT_EQ(runs[i].b, runs[0].b) << "B differs at nt=" << kThreadCounts[i];
  }
}

TEST(DeterminismTest, LuCrtpFactorsIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const CscMatrix a = test_matrix();
  LuCrtpOptions opts;
  opts.block_size = 16;
  opts.tau = 1e-4;
  opts.max_rank = 128;

  std::vector<LuCrtpResult> runs;
  for (int nt : kThreadCounts) {
    ThreadPool::global().set_num_threads(nt);
    runs.push_back(lu_crtp(a, opts));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].rank, runs[0].rank);
    EXPECT_EQ(runs[i].iterations, runs[0].iterations);
    EXPECT_EQ(runs[i].indicator, runs[0].indicator);  // bitwise
    EXPECT_EQ(runs[i].row_perm, runs[0].row_perm);
    EXPECT_EQ(runs[i].col_perm, runs[0].col_perm);
    expect_same_csc(runs[i].l, runs[0].l, "L");
    expect_same_csc(runs[i].u, runs[0].u, "U");
  }
}

// Simulated ranks carry a ScopedSerial guard, so the distributed engine's
// numerics — and with them the whole virtual-time *report structure* (which
// iterations happened, at which rank, with which indicator) — are unaffected
// by the pool size. Virtual seconds themselves are measured CPU time and
// legitimately jitter; they are not compared.
TEST(DeterminismTest, DistTelemetryStructureIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const CscMatrix a = test_matrix(400, 11);
  RandQbOptions opts;
  opts.block_size = 16;
  opts.tau = 1e-3;
  opts.max_rank = 96;
  const int np = 4;

  std::vector<DistRandQbResult> runs;
  for (int nt : kThreadCounts) {
    ThreadPool::global().set_num_threads(nt);
    runs.push_back(randqb_ei_dist(a, opts, np));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].result.rank, runs[0].result.rank);
    EXPECT_EQ(runs[i].result.iterations, runs[0].result.iterations);
    EXPECT_EQ(runs[i].iter_indicator, runs[0].iter_indicator);  // bitwise
    EXPECT_EQ(runs[i].iter_rank, runs[0].iter_rank);
    EXPECT_EQ(runs[i].result.q, runs[0].result.q);
    EXPECT_EQ(runs[i].result.b, runs[0].result.b);
    ASSERT_EQ(runs[i].iter_vseconds.size(), runs[0].iter_vseconds.size());
    // Same number of telemetry points per run (structure, not values).
    EXPECT_EQ(runs[i].result.telemetry.size(), runs[0].result.telemetry.size());
  }
}

}  // namespace
}  // namespace lra
