// Observability layer: JSON emission, Chrome traces, comm counters wiring,
// per-iteration telemetry, JSONL reports, and the kernel-breakdown clamp.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/driver.hpp"
#include "core/lu_crtp_dist.hpp"
#include "core/randqb_ei_dist.hpp"
#include "core/randubv_dist.hpp"
#include "gen/givens_spray.hpp"
#include "gen/spectrum.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "par/kernel_timers.hpp"
#include "par/simcomm.hpp"

namespace lra {
namespace {

CscMatrix test_matrix(Index n = 120, std::uint64_t seed = 3) {
  return givens_spray(geometric_spectrum(n, 5.0, 0.9),
                      {.left_passes = 2, .right_passes = 2, .bandwidth = 0,
                       .seed = seed});
}

// --- JSON helpers ---

TEST(JsonTest, EscapesSpecials) {
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("x\ny\tz"), "x\\ny\\tz");
  EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonTest, NumbersRoundTripAndNonFiniteBecomesNull) {
  EXPECT_EQ(obs::json_number(1.5), "1.5");
  EXPECT_EQ(obs::json_number(0.0), "0");
  EXPECT_EQ(obs::json_number(std::nan("")), "null");
  EXPECT_EQ(obs::json_number(1.0 / 0.0), "null");
}

TEST(JsonTest, ObjBuildsInInsertionOrder) {
  obs::JsonObj o;
  o.field("a", 1).field("b", "two").field("c", true).raw("d", "[1,2]");
  EXPECT_EQ(o.str(), "{\"a\":1,\"b\":\"two\",\"c\":true,\"d\":[1,2]}");
}

// --- Chrome trace export ---

TEST(TraceTest, ChromeExportHasTracksAndCats) {
  std::vector<obs::RankTrace> ranks(2);
  ranks[0].span("spmm", obs::SpanCat::kCompute, 0.0, 1.5);
  ranks[0].span("send->1", obs::SpanCat::kP2P, 1.5, 1.6, 64, 1);
  ranks[1].span("allreduce", obs::SpanCat::kCollective, 0.0, 2.0, 8);
  std::ostringstream os;
  obs::write_chrome_trace(os, ranks);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(s.find("\"cat\":\"compute\""), std::string::npos);
  EXPECT_NE(s.find("\"cat\":\"p2p\""), std::string::npos);
  EXPECT_NE(s.find("\"cat\":\"collective\""), std::string::npos);
  EXPECT_NE(s.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(s.find("rank 1"), std::string::npos);
  // 1.5 virtual seconds -> 1.5e6 microseconds of duration.
  EXPECT_NE(s.find("\"dur\":1500000"), std::string::npos);
  // Balanced braces/brackets as a cheap well-formedness check.
  long depth = 0;
  for (char c : s) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceTest, SimWorldRecordsAllCategoriesPerRank) {
  SimWorld w(2);
  w.enable_tracing();
  w.run([&](RankCtx& ctx) {
    ctx.compute("work", [] {
      volatile double s = 0;
      for (int i = 0; i < 1000; ++i) s = s + i;
    });
    if (ctx.rank() == 0)
      ctx.send<int>(1, {1, 2, 3});
    else
      (void)ctx.recv<int>(0);
    (void)ctx.allreduce_sum(1.0);
  });
  const auto& tr = w.trace();
  ASSERT_EQ(tr.size(), 2u);
  for (int r = 0; r < 2; ++r) {
    bool has_compute = false, has_p2p = false, has_coll = false;
    for (const auto& ev : tr[static_cast<std::size_t>(r)].events) {
      EXPECT_GE(ev.end_v, ev.begin_v);
      if (ev.cat == obs::SpanCat::kCompute) has_compute = true;
      if (ev.cat == obs::SpanCat::kP2P) has_p2p = true;
      if (ev.cat == obs::SpanCat::kCollective) has_coll = true;
    }
    EXPECT_TRUE(has_compute) << "rank " << r;
    EXPECT_TRUE(has_p2p) << "rank " << r;
    EXPECT_TRUE(has_coll) << "rank " << r;
  }
}

TEST(TraceTest, DisabledTracingRecordsNothing) {
  SimWorld w(2);
  w.run([&](RankCtx& ctx) {
    ctx.compute("work", [] {});
    ctx.barrier();
  });
  EXPECT_TRUE(w.trace().empty());
}

// Acceptance guard: the same workload yields bit-identical virtual clocks
// with tracing on and off (spans are recorded outside the timed regions).
TEST(TraceTest, TracingDoesNotPerturbVirtualClocks) {
  auto body = [](RankCtx& ctx) {
    ctx.charge(0.25 * (ctx.rank() + 1));
    if (ctx.rank() == 0)
      ctx.send<double>(1, {1.0, 2.0});
    else
      (void)ctx.recv<double>(0);
    (void)ctx.allreduce_sum(static_cast<double>(ctx.rank()));
    ctx.charge_kernel("tail", 0.125);
  };
  SimWorld off(2);
  off.run(body);
  SimWorld on(2);
  on.enable_tracing();
  on.run(body);
  EXPECT_EQ(off.elapsed_virtual(), on.elapsed_virtual());
  EXPECT_EQ(off.kernel_times_max().at("tail"), on.kernel_times_max().at("tail"));
  EXPECT_FALSE(on.trace().empty());
}

// --- telemetry through the solvers and the driver ---

TEST(TelemetryTest, SequentialSolversEmitPerIterationSamples) {
  const CscMatrix a = test_matrix();
  for (const Method m : {Method::kRandQbEi, Method::kLuCrtp, Method::kIlutCrtp,
                         Method::kRandUbv}) {
    ApproxOptions o;
    o.method = m;
    o.tau = 1e-2;
    o.block_size = 10;
    const LowRankApprox r = approximate(a, o);
    const obs::TelemetrySeries& t = r.telemetry();
    ASSERT_FALSE(t.empty()) << to_string(m);
    for (std::size_t i = 0; i < t.size(); ++i) {
      EXPECT_EQ(t[i].iteration, static_cast<long long>(i) + 1);
      EXPECT_EQ(t[i].tau, o.tau);
      EXPECT_GE(t[i].indicator_rel, 0.0);
      if (i > 0) {
        EXPECT_GE(t[i].rank, t[i - 1].rank);
        EXPECT_GE(t[i].time_seconds, t[i - 1].time_seconds);
      }
    }
    // Converged runs end below tau; LU-family carries fill diagnostics.
    EXPECT_LT(t.back().indicator_rel, o.tau) << to_string(m);
    const bool lu_family = m == Method::kLuCrtp || m == Method::kIlutCrtp;
    EXPECT_EQ(t.back().schur_nnz >= 0, lu_family) << to_string(m);
    EXPECT_EQ(t.back().fill_density >= 0.0, lu_family) << to_string(m);
  }
}

TEST(TelemetryTest, DistributedEnginesEmitTelemetryAndComm) {
  const CscMatrix a = test_matrix(80);
  RandQbOptions qo;
  qo.block_size = 8;
  qo.tau = 1e-2;
  const DistRandQbResult qb = randqb_ei_dist(a, qo, 3, {}, true);
  ASSERT_FALSE(qb.result.telemetry.empty());
  EXPECT_EQ(qb.result.telemetry.size(),
            static_cast<std::size_t>(qb.result.iterations));
  EXPECT_GT(qb.result.telemetry.back().time_seconds, 0.0);
  EXPECT_EQ(qb.comm.per_rank.size(), 3u);
  EXPECT_EQ(qb.comm.check_invariants(), "");
  EXPECT_GT(qb.comm.per_rank[0].total_collective_calls(), 0u);
  ASSERT_EQ(qb.trace.size(), 3u);
  EXPECT_FALSE(qb.trace[0].events.empty());

  LuCrtpOptions lo;
  lo.block_size = 8;
  lo.tau = 1e-2;
  const DistLuResult lu = lu_crtp_dist(a, lo, 2);
  ASSERT_FALSE(lu.result.telemetry.empty());
  EXPECT_GE(lu.result.telemetry.back().schur_nnz, 0);
  EXPECT_GE(lu.result.telemetry.back().factor_nnz, 0);
  EXPECT_EQ(lu.comm.check_invariants(), "");
  EXPECT_TRUE(lu.trace.empty());  // collect_trace not requested

  RandUbvOptions uo;
  uo.block_size = 8;
  uo.tau = 1e-2;
  const DistRandUbvResult ubv = randubv_dist(a, uo, 2, {}, true);
  ASSERT_FALSE(ubv.result.telemetry.empty());
  EXPECT_EQ(ubv.comm.check_invariants(), "");
  ASSERT_EQ(ubv.trace.size(), 2u);
}

TEST(TelemetryTest, DistAutoPrefersDeterministicAtModerateTau) {
  const CscMatrix a = test_matrix();  // dense-ish: sequential auto -> randqb
  ApproxOptions o;
  o.tau = 1e-3;
  EXPECT_EQ(choose_method(a, o), Method::kRandQbEi);
  EXPECT_EQ(choose_method_dist(a, o), Method::kLuCrtp);
  o.tau = 1e-8;  // tight tolerance: randomized wins in parallel too
  EXPECT_EQ(choose_method_dist(a, o), Method::kRandQbEi);
  o.method = Method::kRandUbv;  // explicit choice always wins
  EXPECT_EQ(choose_method_dist(a, o), Method::kRandUbv);
}

// --- JSONL report writer ---

TEST(ReportTest, WritesOneObjectPerLine) {
  const std::string path = "test_obs_report.jsonl";
  {
    obs::ReportWriter w(path);
    obs::JsonObj meta;
    meta.field("type", "meta").field("tool", "test");
    w.write(meta);

    obs::TelemetrySeries series;
    obs::IterationSample s;
    s.iteration = 1;
    s.rank = 8;
    s.indicator_rel = 0.5;
    s.tau = 1e-2;
    s.time_seconds = 0.125;
    series.push_back(s);
    s.iteration = 2;
    s.rank = 16;
    s.schur_nnz = 42;       // LU-family extras appear only when >= 0
    s.fill_density = 0.25;
    s.factor_nnz = 77;
    series.push_back(s);
    obs::write_telemetry(w, "lu_crtp", series);

    obs::CommStats stats;
    stats.per_rank.resize(2);
    for (auto& c : stats.per_rank) c.resize(2);
    stats.per_rank[0].msgs_sent_to[1] = 3;
    stats.per_rank[0].bytes_sent_to[1] = 96;
    stats.per_rank[1].msgs_recv_from[0] = 3;
    stats.per_rank[1].bytes_recv_from[0] = 96;
    stats.per_rank[0].collective_calls["barrier"] = 2;
    stats.per_rank[1].collective_calls["barrier"] = 2;
    obs::write_comm_stats(w, stats);
    EXPECT_EQ(w.records(), 4);  // meta + 2 iterations + comm
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  for (const auto& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
    EXPECT_NE(l.find("\"type\":"), std::string::npos);
  }
  EXPECT_NE(lines[1].find("\"type\":\"iteration\""), std::string::npos);
  EXPECT_EQ(lines[1].find("schur_nnz"), std::string::npos);  // sentinel omitted
  EXPECT_NE(lines[2].find("\"schur_nnz\":42"), std::string::npos);
  EXPECT_NE(lines[3].find("\"type\":\"comm\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"consistent\":true"), std::string::npos);
  EXPECT_NE(lines[3].find("\"total_bytes\":96"), std::string::npos);
  EXPECT_NE(lines[3].find("\"aborted\":false"), std::string::npos);
  EXPECT_NE(lines[3].find("\"fault_events\":0"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ReportTest, CommRecordFlagsInconsistency) {
  const std::string path = "test_obs_report_bad.jsonl";
  {
    obs::ReportWriter w(path);
    obs::CommStats stats;
    stats.per_rank.resize(2);
    for (auto& c : stats.per_rank) c.resize(2);
    stats.per_rank[0].msgs_sent_to[1] = 1;  // never received
    EXPECT_NE(stats.check_invariants(), "");
    obs::write_comm_stats(w, stats);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"consistent\":false"), std::string::npos);
  EXPECT_NE(line.find("\"violation\""), std::string::npos);
  std::remove(path.c_str());
}

// --- kernel breakdown "other" row never goes negative (regression) ---

TEST(KernelBreakdownTest, OtherRowClampsAtZero) {
  std::map<std::string, double> times{{"spmm", 2.0}, {"orth", 1.5}};
  std::ostringstream os;
  // Accounted (3.5s) exceeds the claimed total (1.0s): the remainder must
  // clamp to zero rather than printing a negative duration.
  print_kernel_breakdown(os, times, {"spmm", "orth"}, 1.0);
  const std::string s = os.str();
  EXPECT_NE(s.find("other"), std::string::npos);
  EXPECT_EQ(s.find("-2.5"), std::string::npos);
  EXPECT_EQ(s.find("other     : -"), std::string::npos);
  std::ostringstream os2;
  print_kernel_breakdown(os2, times, {"spmm", "orth"},
                         std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(os2.str().find("nan"), std::string::npos);
}

}  // namespace
}  // namespace lra
