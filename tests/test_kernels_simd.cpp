// SIMD kernel variants: the strict bitwise contract, the fmadd ULP contract,
// and the autotune cache.
//
// `simd-strict` builds every accumulation from madd() — the seed kernels'
// two-rounding chain, lane-sequential in k — so its output must be bitwise
// identical (memcmp, stricter than operator==) to the naive reference for
// every driver, on remainder-heavy shapes straddling the vector width and
// panel edges, at pool widths 1, 2, and 8.
//
// `simd` uses hardware FMA where compiled in: same terms, same order, single
// rounding per term. It is gated against naive by the documented ULP bound
//   |simd - naive| <= 4 * k_eff * eps * (naive on |inputs|)
// where k_eff is the reduction length actually feeding an element, and must
// itself be deterministic — same bits at every pool width and under every
// valid tile geometry (the autotune config is a pure perf knob).
//
// The autotune cache tests pin the resolution contract: round-trip through
// save/load preserves the geometry, and corrupted / wrong-schema /
// wrong-ISA files are rejected (loader returns false, config untouched).

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "dense/blas.hpp"
#include "gen/givens_spray.hpp"
#include "gen/spectrum.hpp"
#include "par/pool.hpp"
#include "sparse/ops.hpp"
#include "support/autotune.hpp"
#include "support/kernel_variant.hpp"
#include "support/simd.hpp"

namespace lra {
namespace {

class PoolGuard {
 public:
  PoolGuard() : saved_(ThreadPool::global().num_threads()) {}
  ~PoolGuard() { ThreadPool::global().set_num_threads(saved_); }

 private:
  int saved_;
};

class VariantGuard {
 public:
  VariantGuard() : saved_(kernel_variant()) {}
  ~VariantGuard() { set_kernel_variant(saved_); }

 private:
  KernelVariant saved_;
};

// Restores the default autotune resolution on exit so config experiments
// cannot leak into other tests.
class ConfigGuard {
 public:
  ~ConfigGuard() { reset_kernel_config(); }
};

const int kWidths[] = {1, 2, 8};

bool bits_equal(const Matrix& x, const Matrix& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         (x.size() == 0 ||
          std::memcmp(x.data(), y.data(),
                      static_cast<std::size_t>(x.size()) * sizeof(double)) ==
              0);
}

Matrix abs_matrix(const Matrix& m) {
  Matrix out = m;
  for (Index i = 0; i < out.size(); ++i)
    out.data()[i] = std::fabs(out.data()[i]);
  return out;
}

CscMatrix abs_csc(const CscMatrix& a) {
  CscMatrix out = a;
  for (double& v : out.values()) v = std::fabs(v);
  return out;
}

Index max_col_nnz(const CscMatrix& a) {
  Index mx = 0;
  for (Index j = 0; j < a.cols(); ++j) mx = std::max(mx, a.col_nnz(j));
  return mx;
}

Index max_row_nnz(const CscMatrix& a) {
  std::vector<Index> cnt(static_cast<std::size_t>(a.rows()), 0);
  for (Index r : a.rowind()) ++cnt[static_cast<std::size_t>(r)];
  Index mx = 0;
  for (Index c : cnt) mx = std::max(mx, c);
  return mx;
}

// |got - ref| <= 4 * keff * eps * absref, elementwise. absref is the same
// kernel run on |inputs| — an upper bound on the magnitude of every partial
// sum, so the bound covers cancellation-heavy elements too.
void expect_ulp_close(const Matrix& ref, const Matrix& absref,
                      const Matrix& got, Index keff, const char* what) {
  ASSERT_EQ(ref.rows(), got.rows()) << what;
  ASSERT_EQ(ref.cols(), got.cols()) << what;
  const double tol = 4.0 * static_cast<double>(keff) * DBL_EPSILON;
  for (Index i = 0; i < ref.size(); ++i) {
    const double d = std::fabs(got.data()[i] - ref.data()[i]);
    EXPECT_TRUE(d <= tol * absref.data()[i])
        << what << " element " << i << ": ref=" << ref.data()[i]
        << " got=" << got.data()[i] << " |d|=" << d
        << " bound=" << tol * absref.data()[i];
  }
}

CscMatrix sparse_matrix(Index n = 600, std::uint64_t seed = 7) {
  return givens_spray(geometric_spectrum(n, 5.0, 0.93),
                      {.left_passes = 3, .right_passes = 3, .bandwidth = 0,
                       .seed = seed});
}

Matrix run_gemm(Index m, Index n, Index k, Trans ta, Trans tb, double alpha,
                double beta) {
  const Matrix a = ta == Trans::kNo ? Matrix::gaussian(m, k, 11)
                                    : Matrix::gaussian(k, m, 11);
  const Matrix b = tb == Trans::kNo ? Matrix::gaussian(k, n, 12)
                                    : Matrix::gaussian(n, k, 12);
  Matrix c = Matrix::gaussian(m, n, 13);
  gemm(c, a, b, alpha, beta, ta, tb);
  return c;
}

struct TransCase {
  Trans ta, tb;
  const char* name;
};
const TransCase kTransCases[] = {{Trans::kNo, Trans::kNo, "nn"},
                                 {Trans::kYes, Trans::kNo, "tn"},
                                 {Trans::kNo, Trans::kYes, "nt"}};

// --- simd-strict: bitwise identical to naive -------------------------------

void check_strict_gemm_shape(Index m, Index n, Index k) {
  for (const TransCase& t : kTransCases) {
    for (const auto& [alpha, beta] :
         std::vector<std::pair<double, double>>{{1.0, 0.0}, {1.25, 0.75}}) {
      set_kernel_variant(KernelVariant::kNaive);
      const Matrix ref = run_gemm(m, n, k, t.ta, t.tb, alpha, beta);
      set_kernel_variant(KernelVariant::kSimdStrict);
      for (int w : kWidths) {
        ThreadPool::global().set_num_threads(w);
        const Matrix got = run_gemm(m, n, k, t.ta, t.tb, alpha, beta);
        EXPECT_TRUE(bits_equal(ref, got))
            << "strict " << t.name << " m=" << m << " n=" << n << " k=" << k
            << " alpha=" << alpha << " beta=" << beta << " width=" << w;
      }
    }
  }
}

TEST(KernelsSimdTest, StrictGemmBitwiseIdenticalOnRemainderShapes) {
  PoolGuard pool;
  VariantGuard variant;
  // Below one vector, straddling the vector width, straddling the micro-tile
  // strip (mr = mv * width, up to 16), and straddling the mc/kc panel edges.
  const Index small[] = {1, 3, 7, 8, 9};
  for (Index m : small)
    for (Index n : small)
      for (Index k : small) check_strict_gemm_shape(m, n, k);
  check_strict_gemm_shape(261, 261, 261);
  check_strict_gemm_shape(261, 9, 8);
  check_strict_gemm_shape(8, 261, 3);
  check_strict_gemm_shape(3, 7, 261);
  check_strict_gemm_shape(17, 19, 23);  // coprime to every lane count
}

TEST(KernelsSimdTest, StrictSparseKernelsBitwiseIdenticalAcrossWidths) {
  PoolGuard pool;
  VariantGuard variant;
  const CscMatrix a = sparse_matrix();
  for (Index cols : {3, 4, 5, 8, 9}) {
    const Matrix b = Matrix::gaussian(a.cols(), cols, 21);
    const Matrix bt = Matrix::gaussian(a.rows(), cols, 22);
    const Matrix left = Matrix::gaussian(cols, a.rows(), 23);

    set_kernel_variant(KernelVariant::kNaive);
    const Matrix ref_mm = spmm(a, b);
    const Matrix ref_tm = spmm_t(a, bt);
    const Matrix ref_dc = dense_times_csc(left, a);

    set_kernel_variant(KernelVariant::kSimdStrict);
    for (int w : kWidths) {
      ThreadPool::global().set_num_threads(w);
      EXPECT_TRUE(bits_equal(ref_mm, spmm(a, b)))
          << "strict spmm cols=" << cols << " width=" << w;
      EXPECT_TRUE(bits_equal(ref_tm, spmm_t(a, bt)))
          << "strict spmm_t cols=" << cols << " width=" << w;
      EXPECT_TRUE(bits_equal(ref_dc, dense_times_csc(left, a)))
          << "strict dense_times_csc cols=" << cols << " width=" << w;
    }
  }
}

TEST(KernelsSimdTest, StrictSparsePreservesZeroSkipOnExplicitZeros) {
  // The naive sparse kernels skip explicit zero B entries; the strict quads
  // fall back per-lane when a quad holds a zero so they must still match
  // bitwise — including on inputs where the skipped term would be NaN * 0.
  PoolGuard pool;
  VariantGuard variant;
  const CscMatrix a = sparse_matrix(200, 17);
  Matrix b = Matrix::gaussian(a.cols(), 6, 24);
  b(0, 0) = 0.0;
  b(1, 1) = 0.0;
  b(5, 2) = 0.0;
  b(2, 3) = std::numeric_limits<double>::quiet_NaN();
  set_kernel_variant(KernelVariant::kNaive);
  const Matrix ref = spmm(a, b);
  set_kernel_variant(KernelVariant::kSimdStrict);
  for (int w : kWidths) {
    ThreadPool::global().set_num_threads(w);
    EXPECT_TRUE(bits_equal(ref, spmm(a, b))) << "width=" << w;
  }
}

// --- simd: ULP-bounded against naive, deterministic in itself --------------

TEST(KernelsSimdTest, SimdGemmWithinUlpBoundOfNaive) {
  PoolGuard pool;
  VariantGuard variant;
  const Index shapes[][3] = {{7, 9, 8}, {33, 17, 64}, {64, 64, 64},
                             {261, 33, 129}};
  for (const auto& s : shapes) {
    const Index m = s[0], n = s[1], k = s[2];
    for (const TransCase& t : kTransCases) {
      const Matrix a = t.ta == Trans::kNo ? Matrix::gaussian(m, k, 11)
                                          : Matrix::gaussian(k, m, 11);
      const Matrix b = t.tb == Trans::kNo ? Matrix::gaussian(k, n, 12)
                                          : Matrix::gaussian(n, k, 12);
      set_kernel_variant(KernelVariant::kNaive);
      Matrix ref(m, n);
      gemm(ref, a, b, 1.0, 0.0, t.ta, t.tb);
      Matrix absref(m, n);
      gemm(absref, abs_matrix(a), abs_matrix(b), 1.0, 0.0, t.ta, t.tb);
      set_kernel_variant(KernelVariant::kSimd);
      ThreadPool::global().set_num_threads(2);
      Matrix got(m, n);
      gemm(got, a, b, 1.0, 0.0, t.ta, t.tb);
      expect_ulp_close(ref, absref, got, k, t.name);
    }
  }
}

TEST(KernelsSimdTest, SimdSparseKernelsWithinUlpBoundOfNaive) {
  PoolGuard pool;
  VariantGuard variant;
  const CscMatrix a = sparse_matrix(400, 9);
  const CscMatrix aa = abs_csc(a);
  const Matrix b = Matrix::gaussian(a.cols(), 8, 21);
  const Matrix bt = Matrix::gaussian(a.rows(), 8, 22);
  const Matrix left = Matrix::gaussian(8, a.rows(), 23);

  set_kernel_variant(KernelVariant::kNaive);
  const Matrix ref_mm = spmm(a, b);
  const Matrix ref_tm = spmm_t(a, bt);
  const Matrix ref_dc = dense_times_csc(left, a);
  const Matrix abs_mm = spmm(aa, abs_matrix(b));
  const Matrix abs_tm = spmm_t(aa, abs_matrix(bt));
  const Matrix abs_dc = dense_times_csc(abs_matrix(left), aa);

  set_kernel_variant(KernelVariant::kSimd);
  ThreadPool::global().set_num_threads(2);
  // Reduction lengths per element: spmm sums over a row's nonzeros, spmm_t
  // and dense_times_csc over a column's.
  expect_ulp_close(ref_mm, abs_mm, spmm(a, b), max_row_nnz(a), "spmm");
  expect_ulp_close(ref_tm, abs_tm, spmm_t(a, bt), max_col_nnz(a), "spmm_t");
  expect_ulp_close(ref_dc, abs_dc, dense_times_csc(left, a), max_col_nnz(a),
                   "dense_times_csc");
}

TEST(KernelsSimdTest, SimdGemmPropagatesNanAndInf) {
  // The fmadd chain must propagate non-finite inputs exactly like IEEE
  // arithmetic: a NaN in row i of A poisons row i of C (dense B), an Inf
  // produces Inf/NaN, and no other row is disturbed.
  PoolGuard pool;
  VariantGuard variant;
  set_kernel_variant(KernelVariant::kSimd);
  const Index m = 13, n = 9, k = 21;
  Matrix a = Matrix::gaussian(m, k, 31);
  const Matrix b = Matrix::gaussian(k, n, 32);
  a(3, 5) = std::numeric_limits<double>::quiet_NaN();
  a(7, 0) = std::numeric_limits<double>::infinity();
  Matrix c(m, n);
  gemm(c, a, b);
  for (Index j = 0; j < n; ++j) {
    EXPECT_TRUE(std::isnan(c(3, j))) << "NaN row, col " << j;
    EXPECT_FALSE(std::isfinite(c(7, j))) << "Inf row, col " << j;
    EXPECT_TRUE(std::isfinite(c(0, j))) << "clean row, col " << j;
  }
}

TEST(KernelsSimdTest, SimdBitsInvariantAcrossWidthsAndTileConfigs) {
  PoolGuard pool;
  VariantGuard variant;
  ConfigGuard config;
  set_kernel_variant(KernelVariant::kSimd);
  const Index m = 67, n = 33, k = 129;
  const Matrix a = Matrix::gaussian(m, k, 41);
  const Matrix b = Matrix::gaussian(k, n, 42);
  const CscMatrix sa = sparse_matrix(300, 43);
  const Matrix left = Matrix::gaussian(16, sa.rows(), 44);

  ThreadPool::global().set_num_threads(1);
  Matrix c_ref(m, n);
  gemm(c_ref, a, b);
  const Matrix d_ref = dense_times_csc(left, sa);

  // Pool width must not change bits (edge tiles use the same scalar fma
  // chain as interior vectors, so work slicing is invisible).
  for (int w : kWidths) {
    ThreadPool::global().set_num_threads(w);
    Matrix c(m, n);
    gemm(c, a, b);
    EXPECT_TRUE(bits_equal(c_ref, c)) << "gemm width=" << w;
    EXPECT_TRUE(bits_equal(d_ref, dense_times_csc(left, sa)))
        << "dtc width=" << w;
  }

  // Nor must the tile geometry: every valid config sums the same terms in
  // the same per-element order.
  const int width = simd::simd_width();
  struct Cand {
    int mc, kc, mv, nr, ib;
  };
  const Cand cands[] = {{64, 128, 1, 4, 2 * width},
                        {128, 64, 2, 6, 4 * width},
                        {256, 384, 4, 4, 8 * width},
                        {32, 8, 1, 8, 1}};
  for (const Cand& cd : cands) {
    KernelConfig cfg = default_kernel_config();
    cfg.gemm.mc = cd.mc;
    cfg.gemm.kc = cd.kc;
    cfg.gemm.mv = cd.mv;
    cfg.gemm.nr = cd.nr;
    cfg.dtc.ib = cd.ib;
    std::string err;
    ASSERT_TRUE(set_kernel_config(cfg, &err)) << err;
    Matrix c(m, n);
    gemm(c, a, b);
    EXPECT_TRUE(bits_equal(c_ref, c))
        << "gemm mc=" << cd.mc << " kc=" << cd.kc << " mv=" << cd.mv
        << " nr=" << cd.nr;
    EXPECT_TRUE(bits_equal(d_ref, dense_times_csc(left, sa)))
        << "dtc ib=" << cd.ib;
  }
}

TEST(KernelsSimdTest, DtcPanelRemainders) {
  // Dense-operand row counts around every panel boundary the packed kernel
  // can hit: below one vector, straddling vectors, straddling the default
  // panel height (8 * width, up to 32) and beyond it.
  PoolGuard pool;
  VariantGuard variant;
  const CscMatrix a = sparse_matrix(300, 51);
  const CscMatrix aa = abs_csc(a);
  const Index keff = max_col_nnz(a);
  for (Index m : {1, 5, 8, 31, 32, 33, 67}) {
    const Matrix left = Matrix::gaussian(m, a.rows(), 52);
    set_kernel_variant(KernelVariant::kNaive);
    const Matrix ref = dense_times_csc(left, a);
    const Matrix absref = dense_times_csc(abs_matrix(left), aa);
    set_kernel_variant(KernelVariant::kSimdStrict);
    EXPECT_TRUE(bits_equal(ref, dense_times_csc(left, a)))
        << "strict dtc m=" << m;
    set_kernel_variant(KernelVariant::kSimd);
    expect_ulp_close(ref, absref, dense_times_csc(left, a), keff, "dtc");
  }
}

// --- autotune cache --------------------------------------------------------

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

TEST(KernelsSimdTest, AutotuneCacheRoundTrips) {
  ConfigGuard config;
  const std::string path = temp_path("lra_autotune_rt.json");
  KernelConfig cfg = default_kernel_config();
  cfg.gemm.mc = 64;
  cfg.gemm.kc = 128;
  cfg.gemm.mv = 1;
  cfg.gemm.nr = 8;
  cfg.dtc.ib = 2 * simd::simd_width();
  std::string err;
  ASSERT_TRUE(save_kernel_config_file(path, cfg, &err)) << err;
  KernelConfig back;
  ASSERT_TRUE(load_kernel_config_file(path, &back, &err)) << err;
  EXPECT_EQ(back.gemm.mc, cfg.gemm.mc);
  EXPECT_EQ(back.gemm.kc, cfg.gemm.kc);
  EXPECT_EQ(back.gemm.mv, cfg.gemm.mv);
  EXPECT_EQ(back.gemm.nr, cfg.gemm.nr);
  EXPECT_EQ(back.dtc.ib, cfg.dtc.ib);
  EXPECT_EQ(back.source, path);  // loaded configs carry their origin
  std::remove(path.c_str());
}

TEST(KernelsSimdTest, AutotuneCacheRejectsCorruptAndForeignFiles) {
  ConfigGuard config;
  std::string err;
  KernelConfig out;

  const std::string garbled = temp_path("lra_autotune_bad.json");
  std::ofstream(garbled) << "{\"schema\": \"lra_autotune/v1\", \"gemm\": {";
  EXPECT_FALSE(load_kernel_config_file(garbled, &out, &err));
  EXPECT_FALSE(err.empty());

  const std::string wrong_schema = temp_path("lra_autotune_schema.json");
  std::ofstream(wrong_schema)
      << "{\"schema\": \"lra_autotune/v999\", \"isa\": \""
      << simd::simd_isa_name()
      << "\", \"gemm\": {\"mc\": 128, \"kc\": 256, \"mv\": 2, \"nr\": 4}, "
         "\"dtc\": {\"ib\": 8}}";
  EXPECT_FALSE(load_kernel_config_file(wrong_schema, &out, &err));

  // A cache tuned on another ISA must be rejected, not silently applied.
  const std::string wrong_isa = temp_path("lra_autotune_isa.json");
  std::ofstream(wrong_isa)
      << "{\"schema\": \"lra_autotune/v1\", \"isa\": \"not-this-isa\", "
         "\"gemm\": {\"mc\": 128, \"kc\": 256, \"mv\": 2, \"nr\": 4}, "
         "\"dtc\": {\"ib\": 8}}";
  EXPECT_FALSE(load_kernel_config_file(wrong_isa, &out, &err));

  // Geometry outside the validated ranges fails validation on load.
  const std::string bad_geom = temp_path("lra_autotune_geom.json");
  std::ofstream(bad_geom)
      << "{\"schema\": \"lra_autotune/v1\", \"isa\": \""
      << simd::simd_isa_name()
      << "\", \"gemm\": {\"mc\": 128, \"kc\": 256, \"mv\": 9, \"nr\": 4}, "
         "\"dtc\": {\"ib\": 8}}";
  EXPECT_FALSE(load_kernel_config_file(bad_geom, &out, &err));

  const std::string missing = temp_path("lra_autotune_missing.json");
  EXPECT_FALSE(load_kernel_config_file(missing, &out, &err));

  for (const std::string& p : {garbled, wrong_schema, wrong_isa, bad_geom})
    std::remove(p.c_str());
}

TEST(KernelsSimdTest, SetKernelConfigRejectsInvalidGeometry) {
  ConfigGuard config;
  const KernelConfig before = kernel_config();
  KernelConfig bad = default_kernel_config();
  bad.gemm.mv = 0;
  std::string err;
  EXPECT_FALSE(set_kernel_config(bad, &err));
  EXPECT_FALSE(err.empty());
  bad = default_kernel_config();
  bad.gemm.mc = 0;
  EXPECT_FALSE(set_kernel_config(bad, &err));
  bad = default_kernel_config();
  bad.gemm.mv = 4;
  bad.gemm.nr = 8;  // mv * nr over the register-pressure cap
  EXPECT_FALSE(set_kernel_config(bad, &err));
  // Rejection leaves the active config untouched.
  EXPECT_EQ(kernel_config().gemm.mc, before.gemm.mc);
  EXPECT_EQ(kernel_config().gemm.nr, before.gemm.nr);
}

TEST(KernelsSimdTest, RuntimeIsaQueriesAreConsistent) {
  const std::string isa = simd::simd_isa_name();
  const int width = simd::simd_width();
  if (isa == "avx2") {
    EXPECT_EQ(width, 4);
    EXPECT_TRUE(simd::simd_has_fma());
  } else if (isa == "sse2") {
    EXPECT_EQ(width, 2);
    EXPECT_FALSE(simd::simd_has_fma());
  } else {
    EXPECT_EQ(isa, "scalar");
    EXPECT_EQ(width, 1);
    EXPECT_FALSE(simd::simd_has_fma());
  }
  EXPECT_NO_THROW(simd::verify_simd_isa());  // we are running on this CPU
  EXPECT_STRNE(simd::cpu_model_name(), "");
}

}  // namespace
}  // namespace lra
