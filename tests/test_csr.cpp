#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include "dense/blas.hpp"
#include "test_util.hpp"

namespace lra {
namespace {

CscMatrix random_csc(Index m, Index n, double drop, std::uint64_t seed) {
  return CscMatrix::from_dense(testing::random_matrix(m, n, seed), drop);
}

class CsrDensity : public ::testing::TestWithParam<double> {};

TEST_P(CsrDensity, CscRoundTripIsExact) {
  const CscMatrix a = random_csc(9, 13, GetParam(), 201);
  const CsrMatrix r = CsrMatrix::from_csc(a);
  EXPECT_TRUE(r.structurally_valid());
  EXPECT_EQ(r.nnz(), a.nnz());
  testing::expect_near_matrix(r.to_dense(), a.to_dense(), 0.0);
  testing::expect_near_matrix(r.to_csc().to_dense(), a.to_dense(), 0.0);
}

TEST_P(CsrDensity, SpmvMatchesCscSpmv) {
  const CscMatrix a = random_csc(11, 8, GetParam(), 202);
  const CsrMatrix r = CsrMatrix::from_csc(a);
  const Matrix x = testing::random_matrix(8, 1, 203);
  std::vector<double> y_csr(11), y_ref(11);
  spmv(r, x.col(0), y_csr.data());
  const Matrix ref = matmul(a.to_dense(), x);
  for (Index i = 0; i < 11; ++i) EXPECT_NEAR(y_csr[i], ref(i, 0), 1e-12);
}

TEST_P(CsrDensity, SpmmAndTransposeMatchDense) {
  const CscMatrix a = random_csc(12, 10, GetParam(), 204);
  const CsrMatrix r = CsrMatrix::from_csc(a);
  const Matrix b = testing::random_matrix(10, 3, 205);
  testing::expect_near_matrix(spmm(r, b), matmul(a.to_dense(), b), 1e-11);
  const Matrix bt = testing::random_matrix(12, 3, 206);
  testing::expect_near_matrix(spmm_t(r, bt), matmul_tn(a.to_dense(), bt),
                              1e-11);
}

INSTANTIATE_TEST_SUITE_P(Densities, CsrDensity, ::testing::Values(0.0, 0.6, 1.5));

TEST(Csr, CoeffLookup) {
  Matrix d(3, 3);
  d(0, 2) = 5.0;
  d(2, 0) = -1.0;
  const CsrMatrix r = CsrMatrix::from_csc(CscMatrix::from_dense(d));
  EXPECT_EQ(r.coeff(0, 2), 5.0);
  EXPECT_EQ(r.coeff(2, 0), -1.0);
  EXPECT_EQ(r.coeff(1, 1), 0.0);
}

TEST(Csr, RowSliceMatchesDenseBlock) {
  const CscMatrix a = random_csc(10, 6, 0.4, 207);
  const CsrMatrix r = CsrMatrix::from_csc(a);
  const CsrMatrix s = r.row_slice(3, 8);
  EXPECT_TRUE(s.structurally_valid());
  testing::expect_near_matrix(s.to_dense(), a.to_dense().block(3, 0, 5, 6),
                              0.0);
}

TEST(Csr, RowSliceEdges) {
  const CscMatrix a = random_csc(6, 4, 0.5, 208);
  const CsrMatrix r = CsrMatrix::from_csc(a);
  EXPECT_EQ(r.row_slice(0, 6).nnz(), r.nnz());
  EXPECT_EQ(r.row_slice(2, 2).rows(), 0);
  EXPECT_EQ(r.row_slice(2, 2).nnz(), 0);
}

TEST(Csr, RowNormsAndScaling) {
  Matrix d(2, 2);
  d(0, 0) = 3.0;
  d(0, 1) = 4.0;
  d(1, 1) = 2.0;
  CsrMatrix r = CsrMatrix::from_csc(CscMatrix::from_dense(d));
  const auto norms = r.row_norms();
  EXPECT_DOUBLE_EQ(norms[0], 5.0);
  EXPECT_DOUBLE_EQ(norms[1], 2.0);
  const std::vector<double> s = {2.0, 0.5};
  r.scale_rows(s);
  EXPECT_DOUBLE_EQ(r.coeff(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(r.coeff(1, 1), 1.0);
}

TEST(Csr, EmptyMatrix) {
  CsrMatrix r(4, 5);
  EXPECT_TRUE(r.structurally_valid());
  EXPECT_EQ(r.nnz(), 0);
  std::vector<double> x(5, 1.0), y(4, -1.0);
  spmv(r, x.data(), y.data());
  for (double v : y) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace lra
