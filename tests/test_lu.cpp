#include "dense/lu.hpp"

#include <gtest/gtest.h>

#include "dense/blas.hpp"
#include "test_util.hpp"

namespace lra {
namespace {

TEST(PartialPivLU, SolveRecoversKnownSolution) {
  const Matrix a = testing::random_matrix(12, 12, 51);
  const Matrix x = testing::random_matrix(12, 3, 52);
  const Matrix b = matmul(a, x);
  PartialPivLU f(a);
  EXPECT_FALSE(f.singular());
  testing::expect_near_matrix(f.solve(b), x, 1e-8);
}

TEST(PartialPivLU, SolveTransposeRecoversKnownSolution) {
  const Matrix a = testing::random_matrix(10, 10, 53);
  const Matrix x = testing::random_matrix(10, 2, 54);
  const Matrix b = matmul_tn(a, x);  // A^T x
  PartialPivLU f(a);
  testing::expect_near_matrix(f.solve_transpose(b), x, 1e-8);
}

TEST(PartialPivLU, RowSolveMatchesTransposeSolve) {
  const Matrix a = testing::random_matrix(8, 8, 55);
  const Matrix b = testing::random_matrix(8, 1, 56);
  PartialPivLU f(a);
  std::vector<double> row(8);
  for (Index i = 0; i < 8; ++i) row[i] = b(i, 0);
  f.solve_row_inplace(row.data());  // x^T A = b^T
  const Matrix xt = f.solve_transpose(b);
  for (Index i = 0; i < 8; ++i) EXPECT_NEAR(row[i], xt(i, 0), 1e-8);
}

TEST(PartialPivLU, DetectsExactSingularity) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;  // third row/col zero
  PartialPivLU f(a);
  EXPECT_TRUE(f.singular());
  EXPECT_EQ(f.rcond_estimate(), 0.0);
}

TEST(PartialPivLU, PivotingHandlesZeroLeadingEntry) {
  Matrix a(2, 2);
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;  // antidiagonal: needs the row swap
  PartialPivLU f(a);
  EXPECT_FALSE(f.singular());
  Matrix b(2, 1);
  b(0, 0) = 3.0;
  b(1, 0) = 5.0;
  const Matrix x = f.solve(b);
  EXPECT_NEAR(x(0, 0), 5.0, 1e-14);
  EXPECT_NEAR(x(1, 0), 3.0, 1e-14);
}

TEST(PartialPivLU, RcondReasonableForIdentity) {
  PartialPivLU f(Matrix::identity(5));
  EXPECT_NEAR(f.rcond_estimate(), 1.0, 1e-14);
}

TEST(PartialPivLU, IllConditionedHasSmallRcond) {
  Matrix a = Matrix::identity(4);
  a(3, 3) = 1e-13;
  PartialPivLU f(a);
  EXPECT_LT(f.rcond_estimate(), 1e-12);
}

}  // namespace
}  // namespace lra
