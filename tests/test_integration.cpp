// End-to-end integration tests: the three methods compared on the paper's
// terms (uniform termination criterion), reproducing the qualitative claims
// of Section VI on miniature problems.

#include <gtest/gtest.h>

#include "core/ilut_crtp.hpp"
#include "core/lu_crtp.hpp"
#include "core/randqb_ei.hpp"
#include "core/randubv.hpp"
#include "core/tsvd.hpp"
#include "dense/svd.hpp"
#include "gen/givens_spray.hpp"
#include "gen/presets.hpp"
#include "gen/spectrum.hpp"
#include "test_util.hpp"

namespace lra {
namespace {

TEST(Integration, AllMethodsReachSameQualityOnPreset) {
  const TestMatrix t = make_preset("M1", 0.1, 11);
  const double tau = 1e-2;

  LuCrtpOptions lo;
  lo.block_size = 16;
  lo.tau = tau;
  const LuCrtpResult lu = lu_crtp(t.a, lo);
  const LuCrtpResult il = ilut_crtp(t.a, lo);
  RandQbOptions ro;
  ro.block_size = 16;
  ro.tau = tau;
  ro.power = 1;
  const RandQbResult qb = randqb_ei(t.a, ro);

  const double bound = tau * t.a.frobenius_norm();
  EXPECT_LT(lu_crtp_exact_error(t.a, lu), bound);
  EXPECT_LT(lu_crtp_exact_error(t.a, il), bound * 1.05);
  EXPECT_LT(randqb_exact_error(t.a, qb), bound);
}

TEST(Integration, RanksAgreeWithTsvdMinimumUpToBlocks) {
  const TestMatrix t = make_preset("M1", 0.08, 13);
  const double tau = 1e-2;
  const Index kmin = min_rank_for_tolerance(t.sigma, tau);

  LuCrtpOptions lo;
  lo.block_size = 8;
  lo.tau = tau;
  const LuCrtpResult lu = lu_crtp(t.a, lo);
  RandQbOptions ro;
  ro.block_size = 8;
  ro.tau = tau;
  ro.power = 2;
  const RandQbResult qb = randqb_ei(t.a, ro);

  EXPECT_GE(lu.rank + lo.block_size, kmin);
  EXPECT_GE(qb.rank + ro.block_size, kmin);
  EXPECT_LE(qb.rank, 2 * kmin + 3 * ro.block_size);
}

TEST(Integration, IlutBeatsLuOnFillHeavyProblem) {
  // The headline claim: with heavy fill-in, ILUT_CRTP produces far sparser
  // factors and a cheaper factorization than LU_CRTP at equal quality.
  const TestMatrix t = make_preset("M2", 0.18, 17);
  LuCrtpOptions o;
  o.block_size = 16;
  o.tau = 1e-2;
  const LuCrtpResult lu = lu_crtp(t.a, o);
  LuCrtpOptions io = o;
  io.estimated_iterations = lu.iterations;
  const LuCrtpResult il = ilut_crtp(t.a, io);

  ASSERT_EQ(lu.status, Status::kConverged);
  ASSERT_EQ(il.status, Status::kConverged);
  const double ratio_nnz =
      static_cast<double>(lu.l.nnz() + lu.u.nnz()) /
      static_cast<double>(il.l.nnz() + il.u.nnz());
  EXPECT_GT(ratio_nnz, 1.3);
  // Work proxy: total Schur nnz processed.
  Index lu_work = 0, il_work = 0;
  for (Index v : lu.schur_nnz) lu_work += v;
  for (Index v : il.schur_nnz) il_work += v;
  EXPECT_LT(il_work, lu_work);
}

TEST(Integration, FillInGrowsOnScatteredProblem) {
  // Fig. 1 (right): density of A^(i) grows over iterations for fill-heavy
  // matrices.
  const TestMatrix t = make_preset("M2", 0.1, 19);
  LuCrtpOptions o;
  o.block_size = 16;
  o.tau = 1e-3;
  const LuCrtpResult lu = lu_crtp(t.a, o);
  ASSERT_GE(lu.fill_density.size(), 3u);
  EXPECT_GT(lu.fill_density[lu.fill_density.size() - 2],
            2.0 * t.a.density());
}

TEST(Integration, LocalStructureFillsLessThanScattered) {
  // The paper's fill-in story is comparative: locally-coupled problems (M1')
  // keep A^(i) sparser through the factorization than globally-coupled ones
  // (M2'). Compare mean density over the common first half of iterations.
  const Index n = 200;
  const auto sigma = algebraic_spectrum(n, 1.0, 1.0);
  const CscMatrix local = givens_spray(
      sigma, {.left_passes = 2, .right_passes = 2, .bandwidth = 8, .seed = 23});
  const CscMatrix scattered = givens_spray(
      sigma, {.left_passes = 2, .right_passes = 2, .bandwidth = 0, .seed = 23});
  LuCrtpOptions o;
  o.block_size = 16;
  o.tau = 1e-2;
  const LuCrtpResult r_local = lu_crtp(local, o);
  const LuCrtpResult r_scat = lu_crtp(scattered, o);
  const std::size_t half =
      std::min(r_local.fill_density.size(), r_scat.fill_density.size()) / 2;
  ASSERT_GT(half, 0u);
  double mean_local = 0.0, mean_scat = 0.0;
  for (std::size_t i = 0; i < half; ++i) {
    mean_local += r_local.fill_density[i];
    mean_scat += r_scat.fill_density[i];
  }
  EXPECT_LT(mean_local, mean_scat);
}

TEST(Integration, GappedSpectrumConvergesInOneIteration) {
  // M4'/M6' behaviour at coarse tau (Table II: its = 1).
  const auto sigma = gapped_spectrum(300, 20, 1e3, 1.0, 0.5);
  const CscMatrix a = givens_spray(
      sigma, {.left_passes = 2, .right_passes = 2, .bandwidth = 0, .seed = 29});
  LuCrtpOptions lo;
  lo.block_size = 32;
  lo.tau = 1e-1;
  EXPECT_EQ(lu_crtp(a, lo).iterations, 1);
  RandQbOptions ro;
  ro.block_size = 32;
  ro.tau = 1e-1;
  ro.power = 1;
  EXPECT_EQ(randqb_ei(a, ro).iterations, 1);
}

TEST(Integration, UniformTerminationMakesMethodsComparable) {
  // Both indicators are measured against the same target tau * ||A||_F; the
  // achieved exact errors must both be below it, and within a small factor
  // of each other (neither method wildly overshoots).
  const TestMatrix t = make_preset("M3", 0.06, 31);
  const double tau = 1e-1;
  LuCrtpOptions lo;
  lo.block_size = 8;
  lo.tau = tau;
  RandQbOptions ro;
  ro.block_size = 8;
  ro.tau = tau;
  ro.power = 1;
  const double e_lu = lu_crtp_exact_error(t.a, lu_crtp(t.a, lo));
  const double e_qb = randqb_exact_error(t.a, randqb_ei(t.a, ro));
  const double bound = tau * t.a.frobenius_norm();
  EXPECT_LT(e_lu, bound);
  EXPECT_LT(e_qb, bound);
  EXPECT_GT(e_lu, bound / 1e3);
  EXPECT_GT(e_qb, bound / 1e3);
}

TEST(Integration, RandUbvIterationsTrackTable2Trend) {
  // its_UBV <= its_p0 + 1 on every preset family we can afford to test.
  const TestMatrix t = make_preset("M1", 0.06, 37);
  RandQbOptions qo;
  qo.block_size = 8;
  qo.tau = 1e-2;
  qo.power = 0;
  RandUbvOptions uo;
  uo.block_size = 8;
  uo.tau = 1e-2;
  EXPECT_LE(randubv(t.a, uo).iterations, randqb_ei(t.a, qo).iterations + 1);
}

}  // namespace
}  // namespace lra
