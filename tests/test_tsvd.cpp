#include "core/tsvd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dense/svd.hpp"
#include "gen/givens_spray.hpp"
#include "gen/spectrum.hpp"
#include "test_util.hpp"

namespace lra {
namespace {

TEST(Tsvd, SparseSingularValuesMatchPrescribedSpectrum) {
  const auto sigma = geometric_spectrum(80, 3.0, 0.9);
  const CscMatrix a = givens_spray(
      sigma, {.left_passes = 2, .right_passes = 2, .bandwidth = 0, .seed = 41});
  const auto sv = sparse_singular_values(a);
  ASSERT_EQ(sv.size(), sigma.size());
  for (std::size_t i = 0; i < sv.size(); ++i)
    EXPECT_NEAR(sv[i], sigma[i], 1e-9 * sigma[0]);
}

TEST(Tsvd, MinRankMatchesSpectrumFormula) {
  const auto sigma = geometric_spectrum(100, 1.0, 0.85);
  const CscMatrix a = givens_spray(
      sigma, {.left_passes = 2, .right_passes = 2, .bandwidth = 0, .seed = 42});
  EXPECT_EQ(tsvd_min_rank(a, 1e-2), min_rank_for_tolerance(sigma, 1e-2));
}

TEST(Tsvd, TruncationErrorEqualsTailNorm) {
  // Eckart-Young: ||A - A_k||_F = sqrt(sum_{i>k} sigma_i^2).
  const auto sigma = geometric_spectrum(40, 2.0, 0.8);
  const CscMatrix a = givens_spray(
      sigma, {.left_passes = 2, .right_passes = 2, .bandwidth = 0, .seed = 43});
  const SvdResult svd = tsvd(a, 40);
  for (Index k : {5, 10, 20}) {
    double tail = 0.0;
    for (std::size_t i = k; i < sigma.size(); ++i) tail += sigma[i] * sigma[i];
    EXPECT_NEAR(tsvd_error(a, svd, k), std::sqrt(tail), 1e-7 * sigma[0]);
  }
}

TEST(Tsvd, FactorsAreOrthonormal) {
  const CscMatrix a = CscMatrix::from_dense(testing::random_matrix(20, 12, 44));
  const SvdResult svd = tsvd(a, 5);
  EXPECT_EQ(svd.u.cols(), 5);
  EXPECT_EQ(svd.v.cols(), 5);
  EXPECT_LT(testing::orthogonality_defect(svd.u), 1e-10);
  EXPECT_LT(testing::orthogonality_defect(svd.v), 1e-10);
}

TEST(Tsvd, TsvdIsOptimalAmongTestedFactorizations) {
  // Any rank-k factorization (e.g. from QR on the leading columns) cannot
  // beat the TSVD error.
  const CscMatrix a = CscMatrix::from_dense(testing::random_matrix(25, 25, 45));
  const SvdResult svd = tsvd(a, 25);
  const double e_tsvd = tsvd_error(a, svd, 6);
  // Crude competitor: first 6 columns exactly, rest zero.
  double competitor_sq = 0.0;
  for (Index j = 6; j < 25; ++j)
    for (double v : a.col_values(j)) competitor_sq += v * v;
  EXPECT_LE(e_tsvd, std::sqrt(competitor_sq) + 1e-12);
}

}  // namespace
}  // namespace lra
