#include "dense/qr.hpp"

#include <gtest/gtest.h>

#include "dense/blas.hpp"
#include "test_util.hpp"

namespace lra {
namespace {

class QrShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrShapes, ReconstructsInput) {
  const auto [m, n] = GetParam();
  const Matrix a = testing::random_matrix(m, n, 21);
  HouseholderQR f(a);
  const Matrix qr = matmul(f.thin_q(), f.r());
  testing::expect_near_matrix(qr, a, 1e-11 * (m + n));
}

TEST_P(QrShapes, ThinQIsOrthonormal) {
  const auto [m, n] = GetParam();
  const Matrix a = testing::random_matrix(m, n, 22);
  HouseholderQR f(a);
  EXPECT_LT(testing::orthogonality_defect(f.thin_q()), 1e-12 * (m + n));
}

TEST_P(QrShapes, RIsUpperTriangular) {
  const auto [m, n] = GetParam();
  const Matrix a = testing::random_matrix(m, n, 23);
  const Matrix r = HouseholderQR(a).r();
  for (Index j = 0; j < r.cols(); ++j)
    for (Index i = j + 1; i < r.rows(); ++i) EXPECT_EQ(r(i, j), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrShapes,
                         ::testing::Values(std::pair{1, 1}, std::pair{10, 3},
                                           std::pair{3, 10}, std::pair{50, 50},
                                           std::pair{200, 17},
                                           std::pair{33, 32}));

TEST(HouseholderQR, ApplyQtThenQIsIdentity) {
  const Matrix a = testing::random_matrix(20, 8, 24);
  HouseholderQR f(a);
  Matrix b = testing::random_matrix(20, 4, 25);
  const Matrix b0 = b;
  f.apply_qt(b);
  f.apply_q(b);
  testing::expect_near_matrix(b, b0, 1e-12 * 20);
}

TEST(HouseholderQR, LeastSquaresSolve) {
  const Matrix a = testing::random_matrix(30, 6, 26);
  const Matrix xtrue = testing::random_matrix(6, 2, 27);
  const Matrix b = matmul(a, xtrue);
  const Matrix x = HouseholderQR(a).solve(b);
  testing::expect_near_matrix(x, xtrue, 1e-9);
}

TEST(HouseholderQR, RankDeficientInputStillOrthonormal) {
  // Two identical columns.
  Matrix a = testing::random_matrix(12, 1, 28);
  Matrix dup = a;
  a.append_cols(dup);
  a.append_cols(testing::random_matrix(12, 2, 29));
  const Matrix q = orth(a);
  EXPECT_EQ(q.cols(), 4);
  EXPECT_LT(testing::orthogonality_defect(q), 1e-11);
}

TEST(Orth, SpansInputRange) {
  const Matrix a = testing::random_matrix(15, 5, 30);
  const Matrix q = orth(a);
  // a - q (q^T a) == 0.
  Matrix res = a;
  gemm(res, q, matmul_tn(q, a), -1.0, 1.0);
  EXPECT_LT(res.max_abs(), 1e-11);
}

TEST(Orth, EmptyInput) {
  const Matrix q = orth(Matrix(7, 0));
  EXPECT_EQ(q.rows(), 7);
  EXPECT_EQ(q.cols(), 0);
}

TEST(Orth, ZeroMatrixProducesOrthonormalCompletion) {
  const Matrix q = orth(Matrix(6, 2));
  EXPECT_EQ(q.cols(), 2);
  EXPECT_LT(testing::orthogonality_defect(q), 1e-14);
}

}  // namespace
}  // namespace lra
