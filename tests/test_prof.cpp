// Tests for the causal profiling subsystem (src/obs/prof): the tiling /
// conservation contract of the tracer, flow pairing under nonblocking comm,
// bitwise stability across thread-pool widths, solver-level conservation for
// all four distributed engines (clean and under a benign fault plan), the
// what-if projection ordering, trace-file round-trips, and the zero-cost
// guarantee when tracing is off. All synthetic schedules use charge()
// (modeled seconds), so their clocks and traces are exactly reproducible;
// solver runs use measured CPU time, so those checks are per-run invariants
// (conservation, ordering) rather than cross-run equality.

#include "obs/prof/profile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/lu_crtp_dist.hpp"
#include "core/randqb_ei_dist.hpp"
#include "core/randubv_dist.hpp"
#include "gen/presets.hpp"
#include "obs/prof/phase.hpp"
#include "obs/prof/trace_io.hpp"
#include "obs/trace.hpp"
#include "par/pool.hpp"
#include "par/simcomm.hpp"
#include "sim/fault/fault.hpp"

namespace lra {
namespace {

using obs::RankTrace;
using obs::SpanOp;
using obs::TraceEvent;
using obs::prof::PhaseScope;
using obs::prof::Profile;

// Deterministic charge-only schedule exercising every event kind: phased
// compute, a p2p ring with shuffled waitall, a nonblocking allreduce with
// compute in its shadow, and a barrier. seed varies the waitall permutation.
std::vector<RankTrace> run_synthetic(int p, bool trace_on, std::uint64_t seed,
                                     std::vector<double>* clocks_out) {
  SimOptions o;
  o.collect_trace = trace_on;
  SimWorld w(p, o);
  std::vector<double> clocks(static_cast<std::size_t>(p), 0.0);
  w.run([&](RankCtx& ctx) {
    const int r = ctx.rank();
    {
      PhaseScope ph(ctx, "sketch");
      ctx.charge(1e-4 * (r + 1));
    }
    if (p > 1) {
      PhaseScope ph(ctx, "power");
      std::vector<SimRequest> reqs;
      for (int k = 0; k < 3; ++k)
        reqs.push_back(ctx.irecv_bytes((r + p - 1) % p, k));
      for (int k = 0; k < 3; ++k) {
        const std::vector<double> payload(8, static_cast<double>(r + k));
        ctx.isend(( r + 1) % p, payload, k);
      }
      ctx.charge(5e-5);
      std::mt19937_64 rng(seed * 1000 + static_cast<std::uint64_t>(r));
      std::shuffle(reqs.begin(), reqs.end(), rng);
      ctx.waitall(reqs);
    }
    {
      PhaseScope ph(ctx, "tsqr");
      CollRequest cr = ctx.iallreduce_sum(std::vector<double>(4, 1.0));
      ctx.charge(2e-5);
      (void)ctx.wait_allreduce_sum(cr);
    }
    ctx.barrier();
    clocks[static_cast<std::size_t>(r)] = ctx.vtime();
  });
  if (clocks_out) *clocks_out = clocks;
  return w.take_trace();
}

void expect_conserved(const Profile& p, const std::string& what) {
  EXPECT_TRUE(p.conserved) << what;
  for (const std::string& v : p.violations)
    ADD_FAILURE() << what << ": " << v;
}

void expect_whatif_ordered(const Profile& p, const std::string& what) {
  const auto& w = p.whatif;
  EXPECT_EQ(w.measured, p.makespan) << what;  // bitwise replay check
  EXPECT_LE(w.compute_only, w.alpha0) << what;
  EXPECT_LE(w.compute_only, w.beta0) << what;
  EXPECT_LE(w.compute_only, w.full_overlap) << what;
  EXPECT_LE(w.alpha0, w.measured) << what;
  EXPECT_LE(w.beta0, w.measured) << what;
  EXPECT_LE(w.full_overlap, w.measured) << what;
}

TEST(Prof, SyntheticTilingAndConservation) {
  for (int p : {1, 2, 4, 8}) {
    std::vector<double> clocks;
    const auto trace = run_synthetic(p, true, 1, &clocks);
    ASSERT_EQ(trace.size(), static_cast<std::size_t>(p));
    const Profile prof = obs::prof::build_profile(trace);
    expect_conserved(prof, "P=" + std::to_string(p));
    expect_whatif_ordered(prof, "P=" + std::to_string(p));
    EXPECT_EQ(prof.makespan,
              *std::max_element(clocks.begin(), clocks.end()));
    // The phased regions must show up under their taxonomy names.
    EXPECT_GT(prof.phases.at("sketch").compute, 0.0);
    EXPECT_GT(prof.phases.at("tsqr").compute, 0.0);
    // Attribution partitions each rank's timeline exactly (tiling).
    for (int r = 0; r < p; ++r) {
      const auto& rp = prof.ranks[static_cast<std::size_t>(r)];
      EXPECT_EQ(rp.total, clocks[static_cast<std::size_t>(r)]);
      EXPECT_NEAR(rp.compute + rp.comm + rp.idle, rp.total,
                  1e-9 * std::max(1.0, rp.total));
    }
  }
}

TEST(Prof, P2PFlowsPairAcrossRanksCausally) {
  for (int p : {2, 8}) {
    const auto trace = run_synthetic(p, true, 2, nullptr);
    // Index all sends by (sender implied by rank, flow).
    std::map<std::pair<int, std::uint64_t>, const TraceEvent*> sends;
    for (int r = 0; r < p; ++r)
      for (const TraceEvent& e : trace[static_cast<std::size_t>(r)].events)
        if (e.op == SpanOp::kSend) {
          const auto key = std::make_pair(r, e.flow);
          EXPECT_EQ(sends.count(key), 0u) << "duplicate send flow";
          sends[key] = &e;
        }
    std::size_t recvs = 0;
    for (int r = 0; r < p; ++r)
      for (const TraceEvent& e : trace[static_cast<std::size_t>(r)].events)
        if (e.op == SpanOp::kRecv) {
          ++recvs;
          ASSERT_GE(e.peer, 0);
          const auto it = sends.find({e.peer, e.flow});
          ASSERT_NE(it, sends.end())
              << "recv flow " << e.flow << " has no matching send";
          // Causal order: the message arrives no earlier than the sender
          // entered its isend, and the receive completes at or after arrival.
          EXPECT_GE(e.avail_v, it->second->block_v);
          EXPECT_GE(e.end_v, e.avail_v);
          EXPECT_EQ(e.bytes, it->second->bytes);
        }
    EXPECT_EQ(recvs, sends.size()) << "every send must be received (P=" << p
                                   << ")";
  }
}

TEST(Prof, CollectivePostWaitPairsOnEveryRank) {
  for (int p : {2, 8}) {
    const auto trace = run_synthetic(p, true, 3, nullptr);
    // Per rank: post and wait flows must pair up 1:1; across ranks, every
    // collective generation appears on all ranks.
    std::map<std::uint64_t, int> world_waits;
    for (int r = 0; r < p; ++r) {
      std::multiset<std::uint64_t> posts, waits;
      for (const TraceEvent& e : trace[static_cast<std::size_t>(r)].events) {
        if (e.op == SpanOp::kCollPost) posts.insert(e.flow);
        if (e.op == SpanOp::kCollWait) {
          waits.insert(e.flow);
          ++world_waits[e.flow];
          EXPECT_GE(e.end_v, e.begin_v);  // completes at/after its post
        }
      }
      EXPECT_EQ(posts, waits) << "rank " << r << " (P=" << p << ")";
      EXPECT_FALSE(posts.empty());
    }
    for (const auto& [flow, count] : world_waits)
      EXPECT_EQ(count, p) << "collective " << flow
                          << " missing on some rank (P=" << p << ")";
  }
}

TEST(Prof, WaitallPermutationKeepsClocksAndComputeAttribution) {
  // Different waitall orders re-shuffle where idle lands between events, but
  // the final clocks, the compute attribution, and conservation are order-
  // independent.
  for (int p : {2, 8}) {
    std::vector<double> c1, c2;
    const auto t1 = run_synthetic(p, true, 10, &c1);
    const auto t2 = run_synthetic(p, true, 11, &c2);
    EXPECT_EQ(c1, c2);
    const Profile p1 = obs::prof::build_profile(t1);
    const Profile p2 = obs::prof::build_profile(t2);
    expect_conserved(p1, "perm A");
    expect_conserved(p2, "perm B");
    EXPECT_EQ(p1.makespan, p2.makespan);
    EXPECT_EQ(p1.compute, p2.compute);
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(p1.ranks[static_cast<std::size_t>(r)].compute,
                p2.ranks[static_cast<std::size_t>(r)].compute);
      // comm + idle together cover the non-compute time either way.
      EXPECT_NEAR(p1.ranks[static_cast<std::size_t>(r)].comm +
                      p1.ranks[static_cast<std::size_t>(r)].idle,
                  p2.ranks[static_cast<std::size_t>(r)].comm +
                      p2.ranks[static_cast<std::size_t>(r)].idle,
                  1e-12);
    }
  }
}

TEST(Prof, TraceAndProfileBitwiseStableAcrossPoolWidths) {
  const int old_threads = ThreadPool::global().num_threads();
  auto run_at_width = [&](int width) {
    ThreadPool::global().set_num_threads(width);
    return run_synthetic(4, true, 5, nullptr);
  };
  const auto t1 = run_at_width(1);
  const auto t8 = run_at_width(8);
  ThreadPool::global().set_num_threads(old_threads);
  ASSERT_EQ(t1.size(), t8.size());
  for (std::size_t r = 0; r < t1.size(); ++r) {
    ASSERT_EQ(t1[r].events.size(), t8[r].events.size()) << "rank " << r;
    for (std::size_t i = 0; i < t1[r].events.size(); ++i) {
      const TraceEvent& a = t1[r].events[i];
      const TraceEvent& b = t8[r].events[i];
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.op, b.op);
      EXPECT_EQ(a.phase, b.phase);
      EXPECT_EQ(a.begin_v, b.begin_v);
      EXPECT_EQ(a.block_v, b.block_v);
      EXPECT_EQ(a.end_v, b.end_v);
      EXPECT_EQ(a.cost_v, b.cost_v);
      EXPECT_EQ(a.avail_v, b.avail_v);
      EXPECT_EQ(a.flow, b.flow);
    }
  }
  const Profile p1 = obs::prof::build_profile(t1);
  const Profile p8 = obs::prof::build_profile(t8);
  EXPECT_EQ(p1.makespan, p8.makespan);
  EXPECT_EQ(p1.whatif.alpha0, p8.whatif.alpha0);
  EXPECT_EQ(p1.whatif.beta0, p8.whatif.beta0);
  EXPECT_EQ(p1.whatif.full_overlap, p8.whatif.full_overlap);
  EXPECT_EQ(p1.whatif.compute_only, p8.whatif.compute_only);
  std::ostringstream s1, s8;
  obs::prof::print_profile(s1, p1);
  obs::prof::print_profile(s8, p8);
  EXPECT_EQ(s1.str(), s8.str());
}

TEST(Prof, TracingOffRecordsNothingAndKeepsClocksBitwise) {
  std::vector<double> on, off;
  (void)run_synthetic(4, true, 7, &on);
  const auto none = run_synthetic(4, false, 7, &off);
  EXPECT_EQ(on, off);  // modeled clocks identical with tracing on or off
  EXPECT_TRUE(none.empty());  // a disabled run hands back no buffers
}

// ---------------------------------------------------------------------------
// Solver-level checks. Small matrix, all four engines, P in {1, 2, 8},
// clean runs and a benign (delay + dup) fault plan.

struct SolverRun {
  Status status = Status::kMaxIterations;
  double vsec = 0.0;
  std::vector<RankTrace> trace;
};

const CscMatrix& test_matrix() {
  static const TestMatrix t = make_preset("M1", 0.1);
  return t.a;
}

SolverRun run_solver(const std::string& method, int np, const SimOptions& sim) {
  const CscMatrix& a = test_matrix();
  SolverRun out;
  if (method == "randqb") {
    RandQbOptions o;
    o.block_size = 8;
    o.tau = 1e-2;
    auto d = randqb_ei_dist(a, o, np, sim);
    out = {d.result.status, d.virtual_seconds, std::move(d.trace)};
  } else if (method == "ubv") {
    RandUbvOptions o;
    o.block_size = 8;
    o.tau = 1e-2;
    auto d = randubv_dist(a, o, np, sim);
    out = {d.result.status, d.virtual_seconds, std::move(d.trace)};
  } else {
    LuCrtpOptions o;
    o.block_size = 8;
    o.tau = 1e-2;
    if (method == "ilut") o.threshold = ThresholdMode::kIlut;
    auto d = lu_crtp_dist(a, o, np, sim);
    out = {d.result.status, d.virtual_seconds, std::move(d.trace)};
  }
  return out;
}

void check_solver_profile(const SolverRun& run, const std::string& what) {
  ASSERT_FALSE(run.trace.empty()) << what;
  const Profile p = obs::prof::build_profile(run.trace);
  expect_conserved(p, what);
  expect_whatif_ordered(p, what);
  EXPECT_EQ(p.makespan, run.vsec) << what;
  // Every attributed phase is either unphased ("") or in the documented
  // taxonomy — a typo'd PhaseScope literal fails here.
  for (const auto& [phase, cost] : p.phases)
    EXPECT_TRUE(phase.empty() || obs::prof::is_documented_phase(phase))
        << what << ": undocumented phase \"" << phase << "\"";
  EXPECT_GT(p.compute, 0.0) << what;
}

TEST(ProfSolvers, ConservationCleanAllEnginesAllWorldSizes) {
  for (const char* method : {"randqb", "lu", "ilut", "ubv"}) {
    for (int np : {1, 2, 8}) {
      SimOptions sim;
      sim.collect_trace = true;
      const SolverRun run = run_solver(method, np, sim);
      const std::string what =
          std::string(method) + " np=" + std::to_string(np);
      EXPECT_NE(run.status, Status::kCommFault) << what;
      check_solver_profile(run, what);
    }
  }
}

TEST(ProfSolvers, ConservationUnderBenignFaultPlan) {
  sim::FaultPlan fp;
  fp.seed = 3;
  fp.delay_prob = 0.5;
  fp.delay_factor = 8.0;
  fp.dup_prob = 0.3;
  for (const char* method : {"randqb", "lu", "ilut", "ubv"}) {
    for (int np : {2, 8}) {
      SimOptions sim;
      sim.collect_trace = true;
      sim.faults = fp;
      const SolverRun run = run_solver(method, np, sim);
      const std::string what =
          std::string(method) + " np=" + std::to_string(np) + " faults";
      EXPECT_NE(run.status, Status::kCommFault) << what;
      check_solver_profile(run, what);
    }
  }
}

TEST(ProfSolvers, ConservationHoldsAtEveryPoolWidth) {
  const int old_threads = ThreadPool::global().num_threads();
  for (int width : {1, 8}) {
    ThreadPool::global().set_num_threads(width);
    SimOptions sim;
    sim.collect_trace = true;
    const SolverRun run = run_solver("randqb", 2, sim);
    check_solver_profile(run, "width=" + std::to_string(width));
  }
  ThreadPool::global().set_num_threads(old_threads);
}

TEST(ProfSolvers, AbortedRunStillYieldsAnalyzableTrace) {
  sim::FaultPlan fp;
  fp.flip_prob = 1.0;
  SimOptions sim;
  sim.collect_trace = true;
  sim.faults = fp;
  const SolverRun run = run_solver("randqb", 2, sim);
  EXPECT_EQ(run.status, Status::kCommFault);
  ASSERT_FALSE(run.trace.empty());
  const Profile p = obs::prof::build_profile(run.trace);
  expect_conserved(p, "aborted run");
  EXPECT_GT(p.makespan, 0.0);
  // Attribution exact over the truncated [0, abort] timeline on every rank.
  for (const auto& rp : p.ranks)
    EXPECT_NEAR(rp.compute + rp.comm + rp.idle, rp.total,
                1e-9 * std::max(1.0, rp.total));
}

TEST(ProfSolvers, TraceFileRoundTripsToBitwiseIdenticalProfile) {
  SimOptions sim;
  sim.collect_trace = true;
  const SolverRun run = run_solver("randqb", 4, sim);
  const Profile live = obs::prof::build_profile(run.trace);
  expect_conserved(live, "live");

  const std::string path = ::testing::TempDir() + "prof_roundtrip_trace.json";
  obs::write_chrome_trace_file(path, run.trace);
  const std::vector<RankTrace> reread = obs::prof::read_chrome_trace_file(path);
  std::remove(path.c_str());
  const Profile back = obs::prof::build_profile(reread);
  expect_conserved(back, "reread");

  EXPECT_EQ(live.makespan, back.makespan);
  EXPECT_EQ(live.whatif.measured, back.whatif.measured);
  EXPECT_EQ(live.whatif.alpha0, back.whatif.alpha0);
  EXPECT_EQ(live.whatif.beta0, back.whatif.beta0);
  EXPECT_EQ(live.whatif.full_overlap, back.whatif.full_overlap);
  EXPECT_EQ(live.whatif.compute_only, back.whatif.compute_only);
  EXPECT_EQ(live.crit_length, back.crit_length);
  ASSERT_EQ(live.ranks.size(), back.ranks.size());
  for (std::size_t r = 0; r < live.ranks.size(); ++r) {
    EXPECT_EQ(live.ranks[r].total, back.ranks[r].total);
    EXPECT_EQ(live.ranks[r].compute, back.ranks[r].compute);
    EXPECT_EQ(live.ranks[r].comm, back.ranks[r].comm);
    EXPECT_EQ(live.ranks[r].idle, back.ranks[r].idle);
    EXPECT_EQ(live.ranks[r].overlap, back.ranks[r].overlap);
  }
  ASSERT_EQ(live.phases.size(), back.phases.size());
  for (const auto& [phase, cost] : live.phases) {
    const auto it = back.phases.find(phase);
    ASSERT_NE(it, back.phases.end()) << phase;
    EXPECT_EQ(cost.compute, it->second.compute) << phase;
    EXPECT_EQ(cost.comm, it->second.comm) << phase;
  }
  // The printed reports agree byte for byte.
  std::ostringstream a, b;
  obs::prof::print_profile(a, live);
  obs::prof::print_profile(b, back);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Prof, JsonlRecordsCarrySchemaFields) {
  const auto trace = run_synthetic(4, true, 9, nullptr);
  const Profile p = obs::prof::build_profile(trace);
  std::ostringstream ss;
  obs::prof::write_profile_jsonl(ss, p, "synthetic");
  const std::string out = ss.str();
  for (const char* needle :
       {"\"type\":\"profile\"", "\"type\":\"profile_rank\"",
        "\"type\":\"profile_phase\"", "\"whatif\"", "\"makespan\"",
        "\"crit_length\"", "\"conserved\":true", "\"run\":\"synthetic\""})
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
}

TEST(Prof, PhaseTaxonomyCoversSolverAnnotations) {
  // Every literal the solvers use must be documented; a representative from
  // each engine keeps this aligned with ARCHITECTURE.md's taxonomy table.
  for (const char* name :
       {"sketch", "tsqr", "power", "reorth", "b_update", "error_check",
        "replicate", "tournament", "panel", "row_perm", "solve_a21", "schur",
        "threshold", "assemble"})
    EXPECT_TRUE(obs::prof::is_documented_phase(name)) << name;
  EXPECT_FALSE(obs::prof::is_documented_phase("sketchy"));
  EXPECT_FALSE(obs::prof::is_documented_phase(""));
}

}  // namespace
}  // namespace lra
