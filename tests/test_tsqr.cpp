#include "dense/tsqr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dense/blas.hpp"
#include "test_util.hpp"

namespace lra {
namespace {

class TsqrBlocks : public ::testing::TestWithParam<int> {};

TEST_P(TsqrBlocks, ReconstructsInput) {
  const int block = GetParam();
  const Matrix a = testing::random_matrix(97, 8, 41);
  const TsqrResult f = tsqr(a, block);
  testing::expect_near_matrix(matmul(f.q, f.r), a, 1e-11 * 100);
}

TEST_P(TsqrBlocks, QIsOrthonormal) {
  const int block = GetParam();
  const Matrix a = testing::random_matrix(97, 8, 42);
  const TsqrResult f = tsqr(a, block);
  EXPECT_LT(testing::orthogonality_defect(f.q), 1e-11);
}

TEST_P(TsqrBlocks, ROnlyVariantMatchesUpToSigns) {
  const int block = GetParam();
  const Matrix a = testing::random_matrix(97, 8, 43);
  const Matrix r1 = tsqr(a, block).r;
  const Matrix r2 = tsqr_r(a, block);
  // R is unique up to row signs; compare |R^T R| which equals A^T A.
  const Matrix g1 = matmul_tn(r1, r1);
  const Matrix g2 = matmul_tn(r2, r2);
  testing::expect_near_matrix(g1, g2, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, TsqrBlocks, ::testing::Values(8, 13, 50, 97, 200));

TEST(Tsqr, RMatchesGram) {
  const Matrix a = testing::random_matrix(60, 5, 44);
  const Matrix r = tsqr_r(a, 10);
  // R^T R == A^T A.
  testing::expect_near_matrix(matmul_tn(r, r), matmul_tn(a, a), 1e-9);
}

TEST(Tsqr, SquareInputSingleBlock) {
  const Matrix a = testing::random_matrix(6, 6, 45);
  const TsqrResult f = tsqr(a, 6);
  testing::expect_near_matrix(matmul(f.q, f.r), a, 1e-12 * 10);
}

}  // namespace
}  // namespace lra
